(* Tests for the measurement harness: statistics, workloads, the
   Monte-Carlo runner and the table printer. *)

open Conrat_harness

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_mean_variance () =
  checkf "mean" 3.0 (Stats.mean [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  checkf "variance" 2.5 (Stats.variance [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  checkf "singleton variance" 0.0 (Stats.variance [ 7.0 ])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
    ignore (Stats.mean []))

let test_quantile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  checkf "median interpolates" 25.0 (Stats.quantile 0.5 xs);
  checkf "min" 10.0 (Stats.quantile 0.0 xs);
  checkf "max" 40.0 (Stats.quantile 1.0 xs);
  checkf "q25" 17.5 (Stats.quantile 0.25 xs)

let test_quantile_unsorted_input () =
  checkf "sorts internally" 25.0 (Stats.quantile 0.5 [ 40.0; 10.0; 30.0; 20.0 ])

let test_summarize () =
  let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  checki "count" 8 s.count;
  checkf "mean" 5.0 s.mean;
  checkf "min" 2.0 s.minimum;
  checkf "max" 9.0 s.maximum;
  checkf "median" 4.5 s.median;
  checkb "sd positive" true (s.stddev > 0.0);
  checkb "ci95 positive" true (s.ci95 > 0.0)

let test_of_ints () =
  let s = Stats.of_ints [ 1; 2; 3 ] in
  checkf "int mean" 2.0 s.mean

let test_binomial_ci () =
  let lo, hi = Stats.binomial_ci95 ~successes:50 ~trials:100 in
  checkb "brackets p" true (lo < 0.5 && 0.5 < hi);
  checkb "reasonable width" true (hi -. lo < 0.25);
  let lo0, hi0 = Stats.binomial_ci95 ~successes:0 ~trials:100 in
  checkf "lower edge at 0" 0.0 lo0;
  checkb "nonzero upper" true (hi0 > 0.0 && hi0 < 0.1);
  let lo1, hi1 = Stats.binomial_ci95 ~successes:100 ~trials:100 in
  checkf "upper edge at 1" 1.0 hi1;
  checkb "nonone lower" true (lo1 > 0.9)

let test_linear_fit_exact () =
  let slope, intercept, r2 =
    Stats.linear_fit [ (1.0, 5.0); (2.0, 7.0); (3.0, 9.0) ]
  in
  checkf "slope" 2.0 slope;
  checkf "intercept" 3.0 intercept;
  checkf "r2 perfect" 1.0 r2

let test_linear_fit_noisy () =
  let points = List.init 50 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 1.0 +. (if i mod 2 = 0 then 0.5 else -0.5))) in
  let slope, _, r2 = Stats.linear_fit points in
  checkb "slope near 3" true (abs_float (slope -. 3.0) < 0.05);
  checkb "r2 high" true (r2 > 0.99)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let rng () = Conrat_sim.Rng.create 5

let test_workload_ranges () =
  List.iter
    (fun (wl : Workload.t) ->
      List.iter
        (fun (n, m) ->
          let inputs = wl.generate ~n ~m (rng ()) in
          checki (wl.wname ^ " length") n (Array.length inputs);
          checkb (wl.wname ^ " in range") true
            (Array.for_all (fun v -> v >= 0 && v < m) inputs))
        [ (1, 2); (8, 2); (5, 3); (16, 10) ])
    [ Workload.all_same; Workload.split_half; Workload.alternating; Workload.uniform;
      Workload.zipf () ]

let test_workload_all_same () =
  let inputs = Workload.all_same.generate ~n:6 ~m:4 (rng ()) in
  checkb "constant" true (Array.for_all (fun v -> v = 0) inputs)

let test_workload_split_half () =
  let inputs = Workload.split_half.generate ~n:6 ~m:2 (rng ()) in
  Alcotest.check Alcotest.(array int) "half zeroes" [| 0; 0; 0; 1; 1; 1 |] inputs

let test_workload_alternating () =
  let inputs = Workload.alternating.generate ~n:5 ~m:3 (rng ()) in
  Alcotest.check Alcotest.(array int) "round robin values" [| 0; 1; 2; 0; 1 |] inputs

let test_workload_zipf_skew () =
  let inputs = Workload.(zipf ()).generate ~n:2000 ~m:10 (rng ()) in
  let count v = Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 inputs in
  checkb "head heavier than tail" true (count 0 > 3 * count 9)

let test_workload_by_name () =
  List.iter
    (fun name -> Alcotest.check Alcotest.string "name" name (Workload.by_name name).wname)
    [ "all_same"; "split_half"; "alternating"; "uniform"; "zipf" ];
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Workload.by_name "nope"))

(* ------------------------------------------------------------------ *)
(* Monte-Carlo runner                                                  *)
(* ------------------------------------------------------------------ *)

let test_run_consensus_outcome_fields () =
  let inputs = [| 0; 1; 0; 1 |] in
  let o =
    Montecarlo.run_consensus ~n:4 ~adversary:Conrat_sim.Adversary.random_uniform ~inputs
      ~seed:11 (Conrat_core.Consensus.standard ~m:2)
  in
  checkb "completed" true o.completed;
  checkb "agreed" true o.agreed;
  checkb "safety ok" true (Result.is_ok o.safety);
  checkb "work positive" true (o.total_work > 0);
  checkb "individual <= total" true (o.individual_work <= o.total_work);
  checki "steps = total work" o.total_work o.steps;
  checkb "registers allocated" true (o.registers >= 6)

let test_run_consensus_deterministic () =
  let run () =
    Montecarlo.run_consensus ~n:4 ~adversary:Conrat_sim.Adversary.random_uniform
      ~inputs:[| 0; 1; 0; 1 |] ~seed:42 (Conrat_core.Consensus.standard ~m:2)
  in
  let a = run () in
  let b = run () in
  Alcotest.check Alcotest.(array (option int)) "same outputs" a.outputs b.outputs;
  checki "same work" a.total_work b.total_work

let test_trials_aggregate () =
  let agg =
    Montecarlo.trials_consensus ~n:4 ~m:2 ~adversary:Conrat_sim.Adversary.random_uniform
      ~workload:Workload.split_half ~seeds:(Montecarlo.seeds 25)
      (Conrat_core.Consensus.standard ~m:2)
  in
  checki "trials" 25 agg.trials;
  checki "all agreed (consensus)" 25 agg.agreements;
  checki "no failures" 0 (List.length agg.failures);
  checki "work samples" 25 (List.length agg.total_works);
  checkb "space recorded" true (agg.space > 0)

let test_trials_deciding_conciliator () =
  (* A conciliator sometimes disagrees: agreements < trials, but no
     safety failures (validity/coherence hold). *)
  let agg =
    Montecarlo.trials_deciding ~n:8 ~m:8
      ~adversary:Conrat_sim.Adversary.write_stalker ~workload:Workload.alternating
      ~seeds:(Montecarlo.seeds 60)
      (Conrat_core.Conciliator.impatient_first_mover ())
  in
  checki "no safety failures" 0 (List.length agg.failures);
  checkb "some disagreement happens" true (agg.agreements < agg.trials);
  checkb "some agreement happens" true (agg.agreements > 0)

let test_seeds_generator () =
  Alcotest.check Alcotest.(list int) "default base" [ 424242; 424243; 424244 ]
    (Montecarlo.seeds 3);
  Alcotest.check Alcotest.(list int) "custom base" [ 7; 8 ] (Montecarlo.seeds ~base:7 2)

(* ------------------------------------------------------------------ *)
(* Table printer                                                       *)
(* ------------------------------------------------------------------ *)

let capture f =
  let path = Filename.temp_file "conrat_table" ".txt" in
  let out = open_out path in
  f out;
  close_out out;
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  s

let test_table_alignment () =
  let s =
    capture (fun out ->
      Table.print ~out ~header:[ "name"; "value" ]
        [ [ "alpha"; "1" ]; [ "b"; "12345" ] ])
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  checki "4 lines" 4 (List.length lines);
  (* All lines equal width. *)
  let widths = List.map String.length lines in
  checki "uniform width" 1 (List.sort_uniq compare widths |> List.length)

let test_table_fl () =
  Alcotest.check Alcotest.string "two digits" "3.14" (Table.fl 3.14159);
  Alcotest.check Alcotest.string "four digits" "3.1416" (Table.fl ~digits:4 3.14159)

(* ------------------------------------------------------------------ *)
(* Experiments plumbing                                                *)
(* ------------------------------------------------------------------ *)

let test_experiment_names () =
  checki "ten experiments" 10 (List.length Experiments.all_names);
  Alcotest.check_raises "unknown experiment" Not_found (fun () ->
    Experiments.run "E99")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "harness"
    [ ( "stats",
        [ tc "mean/variance" `Quick test_mean_variance;
          tc "empty mean" `Quick test_mean_empty;
          tc "quantile" `Quick test_quantile;
          tc "quantile unsorted" `Quick test_quantile_unsorted_input;
          tc "summarize" `Quick test_summarize;
          tc "of_ints" `Quick test_of_ints;
          tc "binomial ci" `Quick test_binomial_ci;
          tc "linear fit exact" `Quick test_linear_fit_exact;
          tc "linear fit noisy" `Quick test_linear_fit_noisy ] );
      ( "workload",
        [ tc "ranges" `Quick test_workload_ranges;
          tc "all_same" `Quick test_workload_all_same;
          tc "split_half" `Quick test_workload_split_half;
          tc "alternating" `Quick test_workload_alternating;
          tc "zipf skew" `Quick test_workload_zipf_skew;
          tc "by_name" `Quick test_workload_by_name ] );
      ( "montecarlo",
        [ tc "outcome fields" `Quick test_run_consensus_outcome_fields;
          tc "deterministic" `Quick test_run_consensus_deterministic;
          tc "aggregate" `Quick test_trials_aggregate;
          tc "deciding aggregate" `Quick test_trials_deciding_conciliator;
          tc "seeds" `Quick test_seeds_generator ] );
      ( "table",
        [ tc "alignment" `Quick test_table_alignment;
          tc "fl" `Quick test_table_fl ] );
      ("experiments", [ tc "names" `Quick test_experiment_names ]) ]
