(* A replicated command log from repeated consensus.

   State-machine replication in miniature: n replicas each receive
   client commands locally and use one consensus instance per log slot
   to agree on the global order.  Each slot runs the paper's standard
   m-valued protocol (commands are drawn from a small command
   alphabet).  At the end, every replica holds an identical log even
   though each proposed different commands under an adversarial
   scheduler — and we verify that, plus validity (every chosen command
   was actually proposed by some replica for that slot).

     dune exec examples/replicated_log.exe
*)

open Conrat_sim
open Conrat_core

let command_names = [| "PUT x"; "PUT y"; "DEL x"; "GET x"; "CAS y"; "NOOP" |]
let m = Array.length command_names

let () =
  let n = 8 in
  let slots = 12 in
  let master = Rng.create 97 in
  let logs = Array.make_matrix n slots (-1) in
  let proposals = Array.make_matrix n slots (-1) in
  for slot = 0 to slots - 1 do
    (* Each replica proposes the next command from its local clients. *)
    let inputs = Array.init n (fun _ -> Rng.int master m) in
    Array.iteri (fun pid c -> proposals.(pid).(slot) <- c) inputs;
    let protocol = Consensus.standard ~m in
    let memory = Memory.create () in
    let instance = protocol.instantiate ~n memory in
    let result =
      Scheduler.run ~n
        ~adversary:Adversary.write_stalker
        ~rng:(Rng.split master)
        ~memory
        (fun ~pid ~rng -> instance.Consensus.decide ~pid ~rng inputs.(pid))
    in
    (match Spec.consensus_execution ~inputs ~outputs:result.outputs ~completed:result.completed with
     | Ok () -> ()
     | Error reason -> failwith (Printf.sprintf "slot %d: %s" slot reason));
    Array.iteri
      (fun pid out ->
        match out with
        | Some c -> logs.(pid).(slot) <- c
        | None -> assert false)
      result.outputs
  done;

  (* Every replica must hold the same log. *)
  for pid = 1 to n - 1 do
    if logs.(pid) <> logs.(0) then failwith "replicas diverged!"
  done;

  Printf.printf "agreed log (%d slots, %d replicas, write_stalker adversary):\n\n" slots n;
  for slot = 0 to slots - 1 do
    let chosen = logs.(0).(slot) in
    let proposers =
      List.filter (fun pid -> proposals.(pid).(slot) = chosen) (List.init n Fun.id)
    in
    Printf.printf "  slot %2d: %-6s  (proposed by %d/%d replicas)\n"
      slot command_names.(chosen) (List.length proposers) n
  done;
  Printf.printf "\nall %d replicas hold identical logs; every chosen command was proposed\n" n;
  Printf.printf "for its slot by at least one replica (validity).\n"
