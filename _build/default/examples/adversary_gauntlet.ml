(* The adversary gauntlet.

   The impatient first-mover conciliator (Theorem 7) guarantees
   agreement with probability >= (1 - e^(-1/4))/4 ~ 0.055 against any
   location-oblivious adversary.  This example runs it against the
   whole adversary zoo — including an adaptive attacker that is outside
   the model — and prints the measured agreement probability for each,
   together with worst-case work.

   Two things to observe in the output: every in-model adversary stays
   comfortably above the bound (most are far above it: the bound is the
   worst case over all adversary strategies, and the analysis is
   conservative), and safety (validity, coherence) never breaks even
   against the adaptive attacker — only the agreement *probability* is
   at risk outside the model.

     dune exec examples/adversary_gauntlet.exe
*)

open Conrat_sim
open Conrat_core
open Conrat_harness

let () =
  let n = 64 in
  let trials = 1500 in
  let factory = Conciliator.impatient_first_mover () in
  Printf.printf
    "Impatient conciliator, n = %d, %d trials per adversary, inputs all distinct.\n"
    n trials;
  Printf.printf "Theorem 7 bound: P[agree] >= %.4f for location-oblivious adversaries.\n"
    Conciliator.delta_impatient;
  let rows =
    List.map
      (fun (adversary, klass) ->
        let agg =
          Montecarlo.trials_deciding ~n ~m:n ~adversary
            ~workload:Workload.alternating ~seeds:(Montecarlo.seeds trials) factory
        in
        let p = float_of_int agg.agreements /. float_of_int agg.trials in
        let lo, hi = Stats.binomial_ci95 ~successes:agg.agreements ~trials:agg.trials in
        [ adversary.Adversary.name;
          klass;
          Printf.sprintf "%.3f" p;
          Printf.sprintf "[%.3f, %.3f]" lo hi;
          string_of_int (List.fold_left max 0 agg.individual_works);
          string_of_int (List.length agg.failures) ])
      [ (Adversary.round_robin, "oblivious");
        (Adversary.random_uniform, "oblivious");
        (Adversary.fixed_permutation (), "oblivious");
        (Adversary.noisy (), "oblivious+jitter");
        (Adversary.priority (), "priority");
        (Adversary.write_stalker, "value-oblivious");
        (Adversary.overwrite_attacker, "location-oblivious");
        (Adversary.adaptive_overwriter, "ADAPTIVE (out of model)") ]
  in
  Table.print
    ~header:[ "adversary"; "class"; "P[agree]"; "95% CI"; "max indiv work"; "violations" ]
    rows;
  Table.note
    (Printf.sprintf "individual work bound: 2 lg n + 4 = %d operations"
       (Conciliator.max_individual_work ~n))
