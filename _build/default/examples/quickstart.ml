(* Quickstart: binary consensus among 8 processes in the
   probabilistic-write model.

   Eight processes start with conflicting inputs (half propose 0, half
   propose 1) and run the paper's standard protocol — impatient
   first-mover conciliators alternating with 3-register binary
   ratifiers — against a scheduler that actively tries to keep them
   disagreeing.  Run with:

     dune exec examples/quickstart.exe
*)

open Conrat_sim
open Conrat_core

let () =
  let n = 8 in
  let inputs = Array.init n (fun pid -> pid mod 2) in
  let protocol = Consensus.standard ~m:2 in

  (* Every execution needs its own one-shot instance and memory. *)
  let memory = Memory.create () in
  let instance = protocol.instantiate ~n memory in

  let result =
    Scheduler.run ~n
      ~adversary:Adversary.overwrite_attacker
      ~rng:(Rng.create 2026)
      ~memory
      ~record:true
      (fun ~pid ~rng -> instance.Consensus.decide ~pid ~rng inputs.(pid))
  in

  Printf.printf "protocol: %s\n" instance.Consensus.name;
  Printf.printf "inputs:   %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int inputs)));
  Printf.printf "outputs:  %s\n"
    (String.concat " "
       (Array.to_list
          (Array.map (function Some v -> string_of_int v | None -> "?") result.outputs)));

  (* The consensus contract, checked on this very execution. *)
  (match
     Spec.consensus_execution ~inputs ~outputs:result.outputs ~completed:result.completed
   with
   | Ok () -> print_endline "spec:     agreement + validity + termination hold"
   | Error reason -> Printf.printf "spec:     VIOLATED (%s)\n" reason);

  Printf.printf "work:     %d operations total, %d by the busiest process\n"
    (Metrics.total result.metrics)
    (Metrics.individual result.metrics);
  Printf.printf "space:    %d registers allocated\n" result.registers;
  (match result.trace with
   | Some trace ->
     Printf.printf "trace:    %d scheduled steps; first three:\n" (Trace.length trace);
     List.iteri
       (fun i ev -> if i < 3 then Format.printf "            %a@." Trace.pp_event ev)
       (Trace.events trace)
   | None -> ())
