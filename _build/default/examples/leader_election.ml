(* Leader election among replicas.

   A classic use of m-valued consensus: n replicas each nominate
   themselves (input = own pid, so m = n possible values) and the
   consensus output is the elected leader.  Validity guarantees the
   leader is an actual replica; agreement guarantees there is exactly
   one.  We elect leaders for several independent "terms" and under
   several adversaries, and show the work staying at O(log n)
   individual / O(n log n) total — the m = n corner of the paper's
   O(n log m) bound.

     dune exec examples/leader_election.exe
*)

open Conrat_sim
open Conrat_core
open Conrat_harness

let elect ~n ~adversary ~seed =
  let protocol = Consensus.standard ~m:n in
  let inputs = Array.init n Fun.id in
  let outcome = Montecarlo.run_consensus ~n ~adversary ~inputs ~seed protocol in
  (match outcome.safety with
   | Ok () -> ()
   | Error reason -> failwith ("consensus violated: " ^ reason));
  let leader =
    match outcome.outputs.(0) with
    | Some leader -> leader
    | None -> assert false (* safety check above implies completion *)
  in
  (leader, outcome.total_work, outcome.individual_work)

let () =
  let n = 32 in
  let terms = 5 in
  Printf.printf "Electing a leader among %d replicas (every replica nominates itself).\n\n" n;
  let rows = ref [] in
  List.iter
    (fun adversary ->
      for term = 1 to terms do
        let leader, total, indiv = elect ~n ~adversary ~seed:((term * 7919) + 13) in
        rows :=
          [ adversary.Adversary.name;
            string_of_int term;
            Printf.sprintf "replica %d" leader;
            string_of_int total;
            string_of_int indiv ]
          :: !rows
      done)
    [ Adversary.random_uniform; Adversary.write_stalker; Adversary.overwrite_attacker ];
  Table.print
    ~header:[ "adversary"; "term"; "elected"; "total ops"; "max ops/replica" ]
    (List.rev !rows);
  Table.note "Different terms elect different leaders (whoever wins the conciliator";
  Table.note "race), but within a term every replica agrees — that is the consensus";
  Table.note "contract, checked on every execution above."
