examples/adversary_gauntlet.ml: Adversary Conciliator Conrat_core Conrat_harness Conrat_sim List Montecarlo Printf Stats Table Workload
