examples/replicated_log.ml: Adversary Array Conrat_core Conrat_sim Consensus Fun List Memory Printf Rng Scheduler Spec
