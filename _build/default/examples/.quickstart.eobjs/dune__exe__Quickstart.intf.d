examples/quickstart.mli:
