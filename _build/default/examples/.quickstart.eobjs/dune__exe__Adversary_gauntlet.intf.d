examples/adversary_gauntlet.mli:
