examples/quickstart.ml: Adversary Array Conrat_core Conrat_sim Consensus Format List Memory Metrics Printf Rng Scheduler Spec String Trace
