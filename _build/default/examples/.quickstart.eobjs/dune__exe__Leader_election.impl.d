examples/leader_election.ml: Adversary Array Conrat_core Conrat_harness Conrat_sim Consensus Fun List Montecarlo Printf Table
