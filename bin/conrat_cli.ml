(* conrat: command-line front end.

   Subcommands:
     run         — run one consensus execution and print the outcome
     experiment  — run the E1..E10 paper-claim reproductions
     sweep       — Monte-Carlo sweep of a protocol at one configuration
     check       — exhaustively verify a named checker configuration
     list        — list protocols, adversaries, workloads, experiments
*)

open Cmdliner
open Conrat_sim
open Conrat_harness

let protocol_of_name ~m name =
  match name with
  | "standard" -> Conrat_core.Consensus.standard ~m
  | "bounded" -> Conrat_core.Consensus.standard_bounded ~m ~rounds:8
  | "constant_rate" -> Conrat_baselines.Baseline.constant_rate_consensus ~m
  | "cil_racing" -> Conrat_baselines.Baseline.cil_racing ~m
  | "coin_voting" ->
    Conrat_core.Consensus.coin_based ~m ~coin:(Conrat_coin.Shared_coin.voting ())
  | other -> failwith (Printf.sprintf "unknown protocol %S (try `conrat list`)" other)

let protocol_names =
  [ "standard"; "bounded"; "constant_rate"; "cil_racing"; "coin_voting" ]

let adversary_names =
  [ "round_robin"; "random_uniform"; "fixed_permutation"; "write_stalker";
    "overwrite_attacker"; "adaptive_overwriter"; "noisy"; "priority" ]

let workload_names = [ "all_same"; "split_half"; "alternating"; "uniform"; "zipf" ]

(* Common options *)

let n_arg =
  Arg.(value & opt int 8 & info [ "n"; "processes" ] ~docv:"N" ~doc:"Number of processes.")

let m_arg =
  Arg.(value & opt int 2 & info [ "m"; "values" ] ~docv:"M" ~doc:"Number of possible input values.")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let protocol_arg =
  Arg.(value & opt string "standard"
       & info [ "p"; "protocol" ] ~docv:"PROTO"
           ~doc:(Printf.sprintf "Protocol: %s." (String.concat ", " protocol_names)))

let adversary_arg =
  Arg.(value & opt string "overwrite_attacker"
       & info [ "a"; "adversary" ] ~docv:"ADV"
           ~doc:(Printf.sprintf "Adversary: %s." (String.concat ", " adversary_names)))

let workload_arg =
  Arg.(value & opt string "split_half"
       & info [ "w"; "workload" ] ~docv:"WL"
           ~doc:(Printf.sprintf "Workload: %s." (String.concat ", " workload_names)))

let trials_arg =
  Arg.(value & opt int 200 & info [ "t"; "trials" ] ~docv:"T" ~doc:"Monte-Carlo trials.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"Domains to run trials on (0 = all cores). Results are \
                 byte-identical for every value; timing is reported on stderr.")

(* run *)

let run_cmd =
  let action n m seed protocol adversary workload trace =
    let protocol = protocol_of_name ~m protocol in
    let adversary = Adversary.by_name adversary in
    let workload = Workload.by_name workload in
    let inputs = workload.Workload.generate ~n ~m (Montecarlo.workload_rng seed) in
    let rng = Rng.create seed in
    let memory = Memory.create () in
    let instance = protocol.instantiate ~n memory in
    let result =
      Scheduler.run ~n ~adversary ~rng ~memory ~record:trace
        (fun ~pid ~rng -> instance.Conrat_core.Consensus.decide ~pid ~rng inputs.(pid))
    in
    Printf.printf "protocol:  %s\nadversary: %s\n" instance.Conrat_core.Consensus.name
      adversary.Adversary.name;
    Printf.printf "inputs:    %s\n"
      (String.concat " " (Array.to_list (Array.map string_of_int inputs)));
    Printf.printf "outputs:   %s\n"
      (String.concat " "
         (Array.to_list
            (Array.map (function Some v -> string_of_int v | None -> "?") result.outputs)));
    (match Spec.consensus_execution ~inputs ~outputs:result.outputs ~completed:result.completed with
     | Ok () -> print_endline "spec:      ok (termination, agreement, validity)"
     | Error reason -> Printf.printf "spec:      VIOLATION: %s\n" reason);
    Printf.printf "work:      total=%d individual=%d\n"
      (Metrics.total result.metrics)
      (Metrics.individual result.metrics);
    (* Read the object's footprint after the run: lazily composed
       protocols grow it as stages are instantiated. *)
    Printf.printf "space:     registers=%d object=%d\n" result.registers
      (instance.Conrat_core.Consensus.space ());
    match result.trace with
    | Some t -> Format.printf "%a@." Trace.pp t
    | None -> ()
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full execution trace.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one consensus execution")
    Term.(const action $ n_arg $ m_arg $ seed_arg $ protocol_arg $ adversary_arg
          $ workload_arg $ trace_arg)

(* sweep *)

let sweep_cmd =
  let action n m seed protocol adversary workload trials jobs =
    let factory = protocol_of_name ~m protocol in
    let adversary = Adversary.by_name adversary in
    let workload = Workload.by_name workload in
    let t0 = Unix.gettimeofday () in
    let agg =
      Montecarlo.trials_consensus ~jobs ~n ~m ~adversary ~workload
        ~seeds:(Montecarlo.seeds ~base:seed trials) factory
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let indiv = Stats.of_ints agg.individual_works in
    let total = Stats.of_ints agg.total_works in
    Table.print
      ~header:[ "metric"; "mean"; "sd"; "median"; "p95"; "max" ]
      [ [ "individual work"; Table.fl indiv.mean; Table.fl indiv.stddev;
          Table.fl indiv.median; Table.fl indiv.p95; Table.fl indiv.maximum ];
        [ "total work"; Table.fl total.mean; Table.fl total.stddev;
          Table.fl total.median; Table.fl total.p95; Table.fl total.maximum ] ];
    Printf.printf "agreement: %d/%d trials; registers: %d; safety violations: %d\n"
      agg.agreements agg.trials agg.space (List.length agg.failures);
    List.iteri
      (fun i (seed, reason) ->
        if i < 3 then Printf.printf "  violation (seed %d): %s\n" seed reason)
      agg.failures;
    Printf.eprintf "[sweep] %d trials in %.2fs (jobs=%d)\n%!" trials elapsed
      (if jobs = 0 then Conrat_harness.Engine.default_jobs () else max 1 jobs)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Monte-Carlo sweep at one configuration")
    Term.(const action $ n_arg $ m_arg $ seed_arg $ protocol_arg $ adversary_arg
          $ workload_arg $ trials_arg $ jobs_arg)

(* experiment *)

let experiment_cmd =
  let action quick jobs json names =
    let mode = if quick then Experiments.Quick else Experiments.Full in
    let names = if names = [] || names = [ "all" ] then Experiments.all_names else names in
    (match List.find_opt (fun n -> not (List.mem n Experiments.all_names)) names with
     | Some bad ->
       Printf.eprintf "conrat: unknown experiment %s (expected %s or 'all')\n"
         bad (String.concat ", " Experiments.all_names);
       exit 2
     | None -> ());
    List.iter (Experiments.run ~mode ~jobs ~json) names
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small sweeps (seconds instead of minutes).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Also write each experiment's structured results as \
                   BENCH_E<k>.json (schema: README, \"Machine-readable results\").")
  in
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"E1..E10, or 'all'.")
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run the paper-claim reproductions (E1..E10)")
    Term.(const action $ quick_arg $ jobs_arg $ json_arg $ names_arg)

(* check *)

let check_cmd =
  let open Conrat_verify in
  let action naive cross budget max_runs artifact_dir replay json names =
    match replay with
    | Some file ->
      (match Artifact.load file with
       | Error msg ->
         Printf.eprintf "conrat: cannot load artifact %s: %s\n" file msg;
         exit 2
       | Ok artifact ->
         (match Checks.find artifact.Artifact.checker with
          | None ->
            Printf.eprintf "conrat: artifact names unknown checker %s\n"
              artifact.Artifact.checker;
            exit 2
          | Some config ->
            (match Checks.replay config artifact with
             | Error reason ->
               Printf.printf "%s: reproduced: %s\n" artifact.Artifact.checker reason
             | Ok () ->
               Printf.printf "%s: did NOT reproduce (checker passed)\n"
                 artifact.Artifact.checker;
               exit 1)))
    | None ->
      let names = if names = [] || names = [ "all" ] then Checks.names else names in
      (match List.find_opt (fun n -> Checks.find n = None) names with
       | Some bad ->
         Printf.eprintf "conrat: unknown checker %s (expected %s or 'all')\n" bad
           (String.concat ", " (Checks.names @ Checks.demo_names));
         exit 2
       | None -> ());
      let t0 = Unix.gettimeofday () in
      let stop () =
        match budget with
        | None -> false
        | Some s -> Unix.gettimeofday () -. t0 > s
      in
      let max_runs_of config =
        match max_runs with Some r -> r | None -> config.Checks.max_runs
      in
      let failed = ref false in
      (* BENCH_VERIFY records: one JSON object per (config, engine) run,
         schema v1 — executions explored, machine steps executed, wall
         clock.  Written at the end when --json is given. *)
      let json_results = ref [] in
      let note ~name ~engine ~complete ~truncated ?pruned ~steps ~exhausted ~ok
          elapsed =
        let pruned_field =
          match pruned with
          | Some p -> Printf.sprintf ",\"pruned\":%d" p
          | None -> ""
        in
        json_results :=
          Printf.sprintf
            "{\"name\":%S,\"engine\":%S,\"executions\":%d,\"complete\":%d,\
             \"truncated\":%d%s,\"steps\":%d,\"wall_clock_seconds\":%.3f,\
             \"exhausted\":%b,\"ok\":%b}"
            name engine (complete + truncated) complete truncated pruned_field
            steps elapsed exhausted ok
          :: !json_results
      in
      let note_por ~name ~ok (s : Por.stats) elapsed =
        note ~name ~engine:"por" ~complete:s.Por.complete ~truncated:s.Por.truncated
          ~pruned:s.Por.pruned ~steps:s.Por.steps ~exhausted:s.Por.exhausted ~ok
          elapsed
      in
      let note_naive ~name ~ok (s : Naive.stats) elapsed =
        note ~name ~engine:"naive" ~complete:s.Naive.complete
          ~truncated:s.Naive.truncated ~steps:s.Naive.steps
          ~exhausted:s.Naive.exhausted ~ok elapsed
      in
      let report_por name (s : Por.stats) elapsed =
        Printf.printf
          "%-26s explored=%d (complete=%d truncated=%d) pruned=%d steps=%d %s (%.1fs)\n%!"
          name (Por.explored s) s.complete s.truncated s.pruned s.steps
          (if s.exhausted then "exhausted"
           else if stop () then "BUDGET EXCEEDED"
           else "run budget exceeded")
          elapsed
      in
      List.iter
        (fun name ->
          let config = Option.get (Checks.find name) in
          let t1 = Unix.gettimeofday () in
          let elapsed () = Unix.gettimeofday () -. t1 in
          if cross then begin
            match Checks.cross_check ~stop ~max_runs:(max_runs_of config) config with
            | Ok x ->
              Printf.printf
                "%-26s naive=%d/%d por=%d/%d pruned=%d outcomes=%d %s (%.1fs)\n%!"
                name x.Checks.naive.Naive.complete x.naive.truncated
                x.por.Por.complete x.por.truncated x.por.pruned x.outcome_count
                (if x.outcomes_agree then "AGREE" else "MISMATCH")
                (elapsed ());
              note_naive ~name ~ok:x.outcomes_agree x.Checks.naive (elapsed ());
              note_por ~name ~ok:x.outcomes_agree x.Checks.por (elapsed ());
              if not x.outcomes_agree then failed := true
            | Error reason ->
              Printf.printf "%-26s VIOLATION: %s\n%!" name reason;
              failed := true
          end
          else if naive then begin
            match
              Naive.explore ~max_depth:config.Checks.max_depth
                ~max_runs:(max_runs_of config)
                ~cheap_collect:config.Checks.cheap_collect ~stop
                ~n:config.Checks.n
                ~setup:(Checks.setup_of config ~n:config.Checks.n)
                ~check:(Checks.check_of config ~n:config.Checks.n)
                ()
            with
            | Ok s ->
              Printf.printf
                "%-26s explored=%d (complete=%d truncated=%d) steps=%d %s (%.1fs)\n%!"
                name (s.Naive.complete + s.truncated) s.complete s.truncated
                s.steps
                (if s.exhausted then "exhausted" else "budget exceeded")
                (elapsed ());
              note_naive ~name ~ok:true s (elapsed ())
            | Error (reason, s) ->
              (* The naive engine reports but cannot shrink (it does not
                 return the failing path); re-run without --naive for an
                 artifact. *)
              Printf.printf "%-26s VIOLATION: %s\n%!" name reason;
              note_naive ~name ~ok:false s (elapsed ());
              failed := true
          end
          else begin
            match Checks.run ~stop ~max_runs:(max_runs_of config) config with
            | Ok s ->
              report_por name s (elapsed ());
              note_por ~name ~ok:true s (elapsed ())
            | Error f ->
              let file =
                Filename.concat artifact_dir (name ^ ".counterexample.sexp")
              in
              Artifact.save file f.Checks.artifact;
              Printf.printf "%-26s VIOLATION: %s\n" name f.Checks.reason;
              Printf.printf
                "  after %d executions; shrunk to n=%d, %d choices \
                 (%d shrink replays)\n"
                (Por.explored f.Checks.stats) f.Checks.artifact.Artifact.n
                (List.length f.Checks.artifact.Artifact.path)
                f.Checks.shrink_replays;
              Printf.printf "  counterexample written to %s\n%!" file;
              note_por ~name ~ok:false f.Checks.stats (elapsed ());
              failed := true
          end)
        names;
      (match json with
       | None -> ()
       | Some file ->
         let oc = open_out file in
         Printf.fprintf oc
           "{\n  \"schema_version\": 1,\n  \"kind\": \"verify-bench\",\n  \
            \"results\": [\n    %s\n  ]\n}\n"
           (String.concat ",\n    " (List.rev !json_results));
         close_out oc;
         Printf.eprintf "[check] wrote %s\n%!" file);
      if !failed then exit 1
  in
  let naive_arg =
    Arg.(value & flag
         & info [ "naive" ]
             ~doc:"Use the unreduced enumerator instead of the POR engine.")
  in
  let cross_arg =
    Arg.(value & flag
         & info [ "cross" ]
             ~doc:"Run both engines and compare complete-execution outcome sets.")
  in
  let budget_arg =
    Arg.(value & opt (some float) None
         & info [ "budget" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget across all requested checkers; exploration \
                   stops cleanly (reported as not exhausted) when exceeded.")
  in
  let max_runs_arg =
    Arg.(value & opt (some int) None
         & info [ "max-runs" ] ~docv:"RUNS"
             ~doc:"Override each config's execution budget.")
  in
  let artifact_dir_arg =
    Arg.(value & opt string "."
         & info [ "artifact-dir" ] ~docv:"DIR"
             ~doc:"Where to write <name>.counterexample.sexp on failure.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a counterexample artifact instead of exploring; exits 0 \
                   iff the violation reproduces.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write per-config exploration statistics (executions, machine \
                   steps, wall clock) as JSON, schema v1; see `make perf-verify` \
                   and BENCH_VERIFY.json.")
  in
  let names_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"CHECKER" ~doc:"Checker config names, or 'all'.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaustively verify named checker configs (POR engine by default)")
    Term.(const action $ naive_arg $ cross_arg $ budget_arg $ max_runs_arg
          $ artifact_dir_arg $ replay_arg $ json_arg $ names_arg)

(* list *)

let list_cmd =
  let action () =
    Printf.printf "protocols:   %s\n" (String.concat ", " protocol_names);
    Printf.printf "adversaries: %s\n" (String.concat ", " adversary_names);
    Printf.printf "workloads:   %s\n" (String.concat ", " workload_names);
    Printf.printf "experiments: %s\n" (String.concat ", " Experiments.all_names);
    Printf.printf "checkers:    %s\n" (String.concat ", " Conrat_verify.Checks.names);
    Printf.printf "checker demos (expected-fail): %s\n"
      (String.concat ", " Conrat_verify.Checks.demo_names)
  in
  Cmd.v (Cmd.info "list" ~doc:"List available components") Term.(const action $ const ())

let () =
  let doc = "modular shared-memory consensus (conciliators + ratifiers), Aspnes PODC 2010" in
  let info = Cmd.info "conrat" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ run_cmd; sweep_cmd; experiment_cmd; check_cmd; list_cmd ]))
