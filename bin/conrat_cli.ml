(* conrat: command-line front end.

   Subcommands:
     run         — run one consensus execution and print the outcome
     experiment  — run the E1..E10 paper-claim reproductions
     sweep       — Monte-Carlo sweep of a protocol at one configuration
     check       — exhaustively verify a named checker configuration
     telemetry   — one checker run with the full telemetry plane on
     trace       — record one execution as a Chrome/Perfetto trace
     list        — list protocols, adversaries, workloads, experiments

   Output discipline: stdout carries results (tables, JSON documents);
   all human-facing progress and timing chatter goes to stderr via
   Report.info, so `--json -` output can be piped straight into a JSON
   consumer. *)

open Cmdliner
open Conrat_sim
open Conrat_harness

let protocol_of_name ~m name =
  match name with
  | "standard" -> Conrat_core.Consensus.standard ~m
  | "bounded" -> Conrat_core.Consensus.standard_bounded ~m ~rounds:8
  | "constant_rate" -> Conrat_baselines.Baseline.constant_rate_consensus ~m
  | "cil_racing" -> Conrat_baselines.Baseline.cil_racing ~m
  | "coin_voting" ->
    Conrat_core.Consensus.coin_based ~m ~coin:(Conrat_coin.Shared_coin.voting ())
  | other -> failwith (Printf.sprintf "unknown protocol %S (try `conrat list`)" other)

let protocol_names =
  [ "standard"; "bounded"; "constant_rate"; "cil_racing"; "coin_voting" ]

let adversary_names =
  [ "round_robin"; "random_uniform"; "fixed_permutation"; "write_stalker";
    "overwrite_attacker"; "adaptive_overwriter"; "noisy"; "priority" ]

let workload_names = [ "all_same"; "split_half"; "alternating"; "uniform"; "zipf" ]

(* Common options *)

let n_arg =
  Arg.(value & opt int 8 & info [ "n"; "processes" ] ~docv:"N" ~doc:"Number of processes.")

let m_arg =
  Arg.(value & opt int 2 & info [ "m"; "values" ] ~docv:"M" ~doc:"Number of possible input values.")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let protocol_arg =
  Arg.(value & opt string "standard"
       & info [ "p"; "protocol" ] ~docv:"PROTO"
           ~doc:(Printf.sprintf "Protocol: %s." (String.concat ", " protocol_names)))

let adversary_arg =
  Arg.(value & opt string "overwrite_attacker"
       & info [ "a"; "adversary" ] ~docv:"ADV"
           ~doc:(Printf.sprintf "Adversary: %s." (String.concat ", " adversary_names)))

let workload_arg =
  Arg.(value & opt string "split_half"
       & info [ "w"; "workload" ] ~docv:"WL"
           ~doc:(Printf.sprintf "Workload: %s." (String.concat ", " workload_names)))

let trials_arg =
  Arg.(value & opt int 200 & info [ "t"; "trials" ] ~docv:"T" ~doc:"Monte-Carlo trials.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"Domains to run trials on (0 = all cores). Results are \
                 byte-identical for every value; timing is reported on stderr.")

(* run *)

let write_chrome_trace ct file =
  if file = "-" then Conrat_obs.Chrome_trace.write ct stdout
  else begin
    let oc = open_out file in
    Conrat_obs.Chrome_trace.write ct oc;
    close_out oc
  end

let run_cmd =
  let action n m seed protocol adversary workload trace obs =
    let protocol = protocol_of_name ~m protocol in
    let adversary = Adversary.by_name adversary in
    let workload = Workload.by_name workload in
    let inputs = workload.Workload.generate ~n ~m (Montecarlo.workload_rng seed) in
    let rng = Rng.create seed in
    let memory = Memory.create () in
    let instance = protocol.instantiate ~n memory in
    let chrome = Option.map (fun _ -> Conrat_obs.Chrome_trace.create ~n) obs in
    let sink = Option.map Conrat_obs.Chrome_trace.sink chrome in
    let result =
      Scheduler.run ~n ~adversary ~rng ~memory ~record:trace ?sink
        (fun ~pid ~rng -> instance.Conrat_core.Consensus.decide ~pid ~rng inputs.(pid))
    in
    (match (obs, chrome) with
     | Some file, Some ct ->
       write_chrome_trace ct file;
       if file <> "-" then
         Report.info "[run] wrote Chrome trace to %s (open in ui.perfetto.dev)" file
     | _ -> ());
    Printf.printf "protocol:  %s\nadversary: %s\n" instance.Conrat_core.Consensus.name
      adversary.Adversary.name;
    Printf.printf "inputs:    %s\n"
      (String.concat " " (Array.to_list (Array.map string_of_int inputs)));
    Printf.printf "outputs:   %s\n"
      (String.concat " "
         (Array.to_list
            (Array.map (function Some v -> string_of_int v | None -> "?") result.outputs)));
    (match Spec.consensus_execution ~inputs ~outputs:result.outputs ~completed:result.completed with
     | Ok () -> print_endline "spec:      ok (termination, agreement, validity)"
     | Error reason -> Printf.printf "spec:      VIOLATION: %s\n" reason);
    Printf.printf "work:      total=%d individual=%d\n"
      (Metrics.total result.metrics)
      (Metrics.individual result.metrics);
    (* Read the object's footprint after the run: lazily composed
       protocols grow it as stages are instantiated. *)
    Printf.printf "space:     registers=%d object=%d\n" result.registers
      (instance.Conrat_core.Consensus.space ());
    match result.trace with
    | Some t -> Format.printf "%a@." Trace.pp t
    | None -> ()
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full execution trace.")
  in
  let obs_arg =
    Arg.(value & opt (some string) None
         & info [ "obs" ] ~docv:"FILE"
             ~doc:"Also record the execution as a Chrome trace-event JSON file \
                   ('-' = stdout), loadable in ui.perfetto.dev.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one consensus execution")
    Term.(const action $ n_arg $ m_arg $ seed_arg $ protocol_arg $ adversary_arg
          $ workload_arg $ trace_arg $ obs_arg)

(* sweep *)

let sweep_cmd =
  let action n m seed protocol adversary workload trials jobs stages faults
      json progress =
    (* SIGINT stops the engine between trials: the aggregates of the
       trials that did finish are flushed (tables, and a well-formed
       partial JSON document when --json was given), then exit 130.
       Installed before anything sized by [trials] so the window in
       which the inherited disposition (often SIG_IGN under a
       backgrounding shell) still applies is negligible. *)
    let interrupted = Atomic.make false in
    ignore
      (Sys.signal Sys.sigint
         (Sys.Signal_handle (fun _ -> Atomic.set interrupted true)));
    let fault_model =
      match faults with
      | None -> None
      | Some s ->
        (match Fault.of_string s with
         | Ok model -> Some model
         | Error msg ->
           Printf.eprintf "conrat: bad --faults %S: %s\n" s msg;
           exit 2)
    in
    let factory = protocol_of_name ~m protocol in
    let adversary = Adversary.by_name adversary in
    let workload = Workload.by_name workload in
    let spec =
      Plan.spec ?faults:fault_model ~stages ~sid:"sweep"
        ~runner:(Plan.Consensus factory) ~adversary ~workload ~n ~m
        ~seeds:(Plan.seeds ~base:seed trials) ()
    in
    let plan = Plan.make ~name:"sweep" [ spec ] in
    let json_stdout = json = Some "-" in
    let reporter =
      if progress then
        Some (Conrat_obs.Progress.create ~expected:trials ~label:"sweep" ())
      else None
    in
    let on_progress =
      Option.map
        (fun r ~done_ ~total ->
          Conrat_obs.Progress.tick r ~done_
            ~detail:(fun () -> Printf.sprintf "of %d trials" total))
        reporter
    in
    let t0 = Unix.gettimeofday () in
    let results =
      Engine.run_plan ~jobs ?on_progress
        ~stop:(fun () -> Atomic.get interrupted)
        ~quarantine:true plan
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    Option.iter Conrat_obs.Progress.finish reporter;
    let agg = Engine.get results "sweep" in
    if not json_stdout && agg.Engine.trials > 0 then begin
      let indiv = Stats.of_ints (Engine.individual_works agg) in
      let total = Stats.of_ints (Engine.total_works agg) in
      Table.print
        ~header:[ "metric"; "mean"; "sd"; "median"; "p95"; "max" ]
        [ [ "individual work"; Table.fl indiv.mean; Table.fl indiv.stddev;
            Table.fl indiv.median; Table.fl indiv.p95; Table.fl indiv.maximum ];
          [ "total work"; Table.fl total.mean; Table.fl total.stddev;
            Table.fl total.median; Table.fl total.p95; Table.fl total.maximum ] ];
      (match agg.Engine.stage_work with
       | [] -> ()
       | stage_rows ->
         print_newline ();
         Table.print
           ~header:[ "stage"; "total work"; "max individual" ]
           (List.map
              (fun (stage, (tot, ind)) ->
                [ stage; string_of_int tot; string_of_int ind ])
              stage_rows))
    end;
    if not json_stdout then begin
      Printf.printf
        "agreement: %d/%d trials; registers: %d; safety violations: %d\n"
        agg.Engine.agreements agg.Engine.trials agg.Engine.space
        (List.length agg.Engine.failures);
      if agg.Engine.crash_total > 0 || agg.Engine.quarantined <> [] then
        Printf.printf
          "faults:    crashes=%d recoveries=%d overrides_ignored=%d \
           quarantined=%d\n"
          agg.Engine.crash_total agg.Engine.recover_total
          agg.Engine.plan_ignored_total
          (List.length agg.Engine.quarantined);
      List.iteri
        (fun i (seed, reason) ->
          if i < 3 then Printf.printf "  violation (seed %d): %s\n" seed reason)
        agg.Engine.failures;
      flush stdout
    end
    else
      Report.info
        "[sweep] agreement: %d/%d trials; registers: %d; safety violations: %d"
        agg.Engine.agreements agg.Engine.trials agg.Engine.space
        (List.length agg.Engine.failures);
    (match json with
     | None -> ()
     | Some file ->
       let pairs_obj field_name pairs =
         Printf.sprintf "\"%s\": [%s]" field_name
           (String.concat ", "
              (List.map
                 (fun (seed, text) ->
                   Printf.sprintf "{\"seed\":%d,\"detail\":%S}" seed text)
                 pairs))
       in
       let works field_name samples =
         if samples = [] then Printf.sprintf "\"%s\": null" field_name
         else
           let s = Stats.of_ints samples in
           Printf.sprintf
             "\"%s\": {\"mean\":%.3f,\"stddev\":%.3f,\"median\":%.3f,\
              \"p95\":%.3f,\"max\":%.3f}"
             field_name s.Stats.mean s.Stats.stddev s.Stats.median s.Stats.p95
             s.Stats.maximum
       in
       (* Fold the fault totals into a counter registry under the same
          names check --json uses ([recovers],
          [plan_overrides_ignored]), so degraded plan overrides surface
          in the shared telemetry vocabulary, not only as sweep-local
          fields. *)
       let telem = Conrat_obs.Telemetry.create ~domains:1 () in
       let tp = Conrat_obs.Telemetry.probe telem ~domain:0 in
       Conrat_obs.Telemetry.add tp Conrat_obs.Telemetry.recovers
         agg.Engine.recover_total;
       Conrat_obs.Telemetry.add tp Conrat_obs.Telemetry.plan_overrides_ignored
         agg.Engine.plan_ignored_total;
       Conrat_obs.Telemetry.finalize telem;
       let doc =
         Printf.sprintf
           "{\n  \"schema_version\": 1,\n  \"kind\": \"sweep\",\n  \
            \"protocol\": %S,\n  \"adversary\": %S,\n  \"workload\": %S,\n  \
            \"n\": %d,\n  \"m\": %d,\n  \"seed\": %d,\n  \
            \"faults\": %S,\n  \"trials_requested\": %d,\n  \
            \"trials_completed\": %d,\n  \"agreements\": %d,\n  \
            \"registers\": %d,\n  \"crash_total\": %d,\n  \
            \"recover_total\": %d,\n  \"plan_overrides_ignored\": %d,\n  \
            \"interrupted\": %b,\n  %s,\n  %s,\n  %s,\n  %s,\n  \
            \"telemetry\": %s\n}\n"
           protocol adversary.Adversary.name workload.Workload.wname n m seed
           (Fault.to_string
              (Option.value fault_model ~default:Fault.none))
           trials agg.Engine.trials agg.Engine.agreements agg.Engine.space
           agg.Engine.crash_total agg.Engine.recover_total
           agg.Engine.plan_ignored_total
           (Atomic.get interrupted)
           (pairs_obj "violations" agg.Engine.failures)
           (pairs_obj "quarantined" agg.Engine.quarantined)
           (works "total_work" (Engine.total_works agg))
           (works "individual_work" (Engine.individual_works agg))
           (Conrat_obs.Telemetry.to_json telem)
       in
       if json_stdout then (print_string doc; flush stdout)
       else begin
         let oc = open_out file in
         output_string oc doc;
         close_out oc;
         Report.info "[sweep] wrote %s" file
       end);
    Report.info "[sweep] %d/%d trials in %.2fs (jobs=%d)" agg.Engine.trials
      trials elapsed
      (if jobs = 0 then Engine.default_jobs () else max 1 jobs);
    if Atomic.get interrupted then begin
      Report.info "[sweep] interrupted (SIGINT); partial results flushed";
      exit 130
    end
  in
  let stages_arg =
    Arg.(value & flag
         & info [ "stages" ]
             ~doc:"Also collect and print the per-stage work breakdown \
                   (where in the composed protocol the operations happen).")
  in
  let faults_arg =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Inject faults into every trial: 'crash:f=K' (up to K \
                   random crash-stops), 'weak' (stale reads on weakened \
                   registers), 'recover[:r=R]' (restart up to R crashed \
                   processes with volatile registers wiped; needs a crash \
                   budget), combinations like 'crash:f=1,recover,weak', or \
                   'none'.  Safety is still checked on the survivors; crashed \
                   processes are excused.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the sweep's aggregate as a JSON document (schema v1, \
                   kind \"sweep\"); '-' writes it to stdout and moves the \
                   human-facing tables to stderr.  On SIGINT the document \
                   still lands, well-formed, with \"interrupted\": true.")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ] ~doc:"Show a progress line on stderr while sweeping.")
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Monte-Carlo sweep at one configuration")
    Term.(const action $ n_arg $ m_arg $ seed_arg $ protocol_arg $ adversary_arg
          $ workload_arg $ trials_arg $ jobs_arg $ stages_arg $ faults_arg
          $ json_arg $ progress_arg)

(* experiment *)

let experiment_cmd =
  let action quick jobs json progress names =
    let mode = if quick then Experiments.Quick else Experiments.Full in
    let names = if names = [] || names = [ "all" ] then Experiments.all_names else names in
    (match List.find_opt (fun n -> not (List.mem n Experiments.all_names)) names with
     | Some bad ->
       Printf.eprintf "conrat: unknown experiment %s (expected %s or 'all')\n"
         bad (String.concat ", " Experiments.all_names);
       exit 2
     | None -> ());
    List.iter (Experiments.run ~mode ~jobs ~json ~progress) names
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small sweeps (seconds instead of minutes).")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Show a per-trial progress line on stderr while an experiment runs.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Also write each experiment's structured results as \
                   BENCH_E<k>.json (schema: README, \"Machine-readable results\").")
  in
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"E1..E10, or 'all'.")
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run the paper-claim reproductions (E1..E10)")
    Term.(const action $ quick_arg $ jobs_arg $ json_arg $ progress_arg $ names_arg)

(* check *)

let check_cmd =
  let open Conrat_verify in
  let action naive cross dpor engine_s budget timeout max_runs artifact_dir
      replay json faults checkpoint resume jobs dedup no_telemetry progress
      progress_interval quiet names =
    let jobs = if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs in
    (* The program engine (VM vs tree interpreter) is orthogonal to the
       exploration algorithm (--naive / --cross): every algorithm runs
       on either engine with bit-identical results. *)
    let exec_engine : Machine.engine =
      match engine_s with
      | "vm" -> `Vm
      | "tree" -> `Tree
      | other ->
        Printf.eprintf "conrat: bad --engine %S (expected 'vm' or 'tree')\n"
          other;
        exit 2
    in
    match replay with
    | Some file ->
      (* A replay must never die with a backtrace on operator input: any
         escape from artifact parsing or re-execution (torn file, stale
         register indices, n larger than the config's inputs, …) is a
         diagnosable bad-artifact condition, exit 2. *)
      (try
         match Artifact.load file with
         | Error msg ->
           Printf.eprintf "conrat: cannot load artifact %s: %s\n" file msg;
           exit 2
         | Ok artifact ->
           (match Checks.find artifact.Artifact.checker with
            | None ->
              Printf.eprintf "conrat: artifact names unknown checker %s\n"
                artifact.Artifact.checker;
              exit 2
            | Some config ->
              (match Checks.replay ~engine:exec_engine config artifact with
               | Error reason ->
                 Printf.printf "%s: reproduced: %s\n" artifact.Artifact.checker
                   reason
               | Ok () ->
                 Printf.printf "%s: did NOT reproduce (checker passed)\n"
                   artifact.Artifact.checker;
                 exit 1))
       with e ->
         Printf.eprintf "conrat: artifact %s is not replayable: %s\n" file
           (Printexc.to_string e);
         exit 2)
    | None ->
      let names = if names = [] || names = [ "all" ] then Checks.names else names in
      (match List.find_opt (fun n -> Checks.find n = None) names with
       | Some bad ->
         Printf.eprintf "conrat: unknown checker %s (expected %s or 'all')\n" bad
           (String.concat ", "
              (Checks.names @ Checks.demo_names @ Checks.extended_names));
         exit 2
       | None -> ());
      let fault_override =
        match faults with
        | None -> None
        | Some s ->
          (match Fault.of_string s with
           | Ok m -> Some m
           | Error msg ->
             Printf.eprintf "conrat: bad --faults %S: %s\n" s msg;
             exit 2)
      in
      let engine_name =
        if cross then "cross"
        else if naive then "naive"
        else if dpor then "dpor"
        else "por"
      in
      if dpor && (naive || cross) then begin
        Printf.eprintf "conrat: --dpor excludes --naive/--cross\n";
        exit 2
      end;
      if dpor && (jobs > 1 || dedup || checkpoint <> None || resume <> None)
      then begin
        Printf.eprintf
          "conrat: --dpor is the sequential reduction oracle; it supports \
           neither --jobs, --dedup nor checkpointing\n";
        exit 2
      end;
      if dedup && (naive || cross) then begin
        Printf.eprintf "conrat: --dedup applies to the POR engine only\n";
        exit 2
      end;
      if dedup && engine_s = "tree" then begin
        Printf.eprintf
          "conrat: --dedup needs the VM engine's state hash (drop \
           --engine tree)\n";
        exit 2
      end;
      if dedup && (checkpoint <> None || resume <> None) then begin
        Printf.eprintf
          "conrat: --dedup does not combine with --checkpoint/--resume (the \
           visited-state table is not serialized)\n";
        exit 2
      end;
      if jobs > 1 && (checkpoint <> None || resume <> None) then begin
        Printf.eprintf
          "conrat: --checkpoint/--resume apply to sequential runs only (drop \
           --jobs)\n";
        exit 2
      end;
      if (checkpoint <> None || resume <> None) && cross then begin
        Printf.eprintf "conrat: --checkpoint/--resume do not apply to --cross\n";
        exit 2
      end;
      if (checkpoint <> None || resume <> None) && List.length names <> 1 then begin
        Printf.eprintf
          "conrat: --checkpoint/--resume need exactly one checker name\n";
        exit 2
      end;
      let resume_counts =
        match resume with
        | None -> None
        | Some file ->
          (match Checkpoint.load file with
           | Error msg ->
             Printf.eprintf "conrat: cannot load checkpoint %s: %s\n" file msg;
             exit 2
           | Ok ck ->
             if ck.Checkpoint.engine <> engine_name then begin
               Printf.eprintf
                 "conrat: checkpoint %s was written by the %s engine (this run \
                  uses %s)\n"
                 file ck.Checkpoint.engine engine_name;
               exit 2
             end;
             if not (List.mem ck.Checkpoint.checker names) then begin
               Printf.eprintf "conrat: checkpoint %s is for checker %s\n" file
                 ck.Checkpoint.checker;
               exit 2
             end;
             Some ck.Checkpoint.counts)
      in
      let on_checkpoint ~name =
        Option.map
          (fun file counts ->
            Checkpoint.save file
              { Checkpoint.engine = engine_name; checker = name; counts })
          checkpoint
      in
      (* SIGINT flips a flag the exploration polls; the explorer saves a
         final checkpoint (when asked), the partial JSON document is
         still written, and the process exits 130 like an interrupted
         shell command. *)
      let interrupted = Atomic.make false in
      ignore
        (Sys.signal Sys.sigint
           (Sys.Signal_handle (fun _ -> Atomic.set interrupted true)));
      (* With `--json -` the JSON document owns stdout, so every human
         line is rerouted to stderr via Report.info. *)
      let json_stdout = json = Some "-" in
      let say fmt =
        Printf.ksprintf
          (fun s ->
            if json_stdout then Report.info "%s" s
            else begin
              print_string s;
              print_newline ();
              flush stdout
            end)
          fmt
      in
      (* Progress heartbeats: on by default only on an interactive
         non-CI stderr; --progress forces them on, --quiet off. *)
      let progress_on =
        (progress || Conrat_obs.Progress.default_enabled ()) && not quiet
      in
      let baselines =
        if progress_on then Conrat_obs.Baseline.load Conrat_obs.Baseline.default_path
        else []
      in
      let reporter ~engine name =
        if not progress_on then None
        else begin
          let b = Conrat_obs.Baseline.find baselines ~name ~engine in
          let expected =
            Option.map (fun e -> e.Conrat_obs.Baseline.executions) b
          in
          let baseline_seconds =
            Option.map (fun e -> e.Conrat_obs.Baseline.wall_clock_seconds) b
          in
          (* A fleet's heartbeat arrives pre-batched (one call per
             worker flush, not one per leaf), so the tick countdown
             that amortises clock reads on the sequential per-leaf
             path would starve emission — check the clock every
             call instead. *)
          let check_every = if jobs > 1 then Some 1 else None in
          Some
            (Conrat_obs.Progress.create ?interval:progress_interval ?expected
               ?baseline_seconds ?check_every
               ~label:
                 (if jobs > 1 then
                    Printf.sprintf "%s/%s (j%d)" name engine jobs
                  else Printf.sprintf "%s/%s" name engine)
               ())
        end
      in
      (* Heartbeat details: the base counts always; when a telemetry
         registry is live, the fleet extras — steal count and shards
         still in flight under --jobs, dedup hit-rate under --dedup —
         read racily off the registry ([Telemetry.live]). *)
      let fleet_detail telemetry =
        match telemetry with
        | None -> ""
        | Some t ->
          let module T = Conrat_obs.Telemetry in
          let parts = ref [] in
          if dedup then begin
            let h = T.live t T.dedup_hits and m = T.live t T.dedup_misses in
            if h + m > 0 then
              parts :=
                Printf.sprintf "dedup %.0f%%"
                  (100. *. float_of_int h /. float_of_int (h + m))
                :: !parts
          end;
          if jobs > 1 then begin
            let steals = T.live t T.steals in
            parts :=
              Printf.sprintf "steals %d (%d live)" steals
                (steals - T.live t T.shards_done)
              :: !parts
          end;
          String.concat "" (List.map (fun s -> ", " ^ s) !parts)
      in
      let por_heartbeat ?telemetry rep =
        Option.map
          (fun r ~runs ~pruned ~steps ~depth:_ ->
            Conrat_obs.Progress.tick r ~done_:runs
              ~detail:(fun () ->
                Printf.sprintf "pruned %d, %d steps%s" pruned steps
                  (fleet_detail telemetry)))
          rep
      in
      let naive_heartbeat ?telemetry rep =
        Option.map
          (fun r ~runs ~steps ~depth:_ ->
            Conrat_obs.Progress.tick r ~done_:runs
              ~detail:(fun () ->
                Printf.sprintf "%d steps%s" steps (fleet_detail telemetry)))
          rep
      in
      let finish rep = Option.iter Conrat_obs.Progress.finish rep in
      let t0 = Unix.gettimeofday () in
      let stop_global () =
        Atomic.get interrupted
        || (match budget with
            | None -> false
            | Some s -> Unix.gettimeofday () -. t0 > s)
      in
      let max_runs_of config =
        match max_runs with Some r -> r | None -> config.Checks.max_runs
      in
      let failed = ref false in
      (* BENCH_VERIFY records: one JSON object per (config, engine) run
         — executions explored, machine steps executed, wall clock, and
         (unless --no-telemetry) the schema-v3 telemetry block as the
         row's LAST field: [Baseline.raw_field] takes the first
         occurrence of a key in a row, so the nested block's own
         "steps"/"executions" keys must come after the row's.  Written
         at the end when --json is given. *)
      let telemetry_json_on = json <> None && not no_telemetry in
      let any_telemetry = ref false in
      let json_results = ref [] in
      let note ~name ~engine ~complete ~truncated ?pruned ~steps ~exhausted ~ok
          ?telemetry elapsed =
        let pruned_field =
          match pruned with
          | Some p -> Printf.sprintf ",\"pruned\":%d" p
          | None -> ""
        in
        let telemetry_field =
          match telemetry with
          | Some doc ->
            any_telemetry := true;
            Printf.sprintf ",\"telemetry\":%s" doc
          | None -> ""
        in
        (* "engine" stays the exploration algorithm (por/naive), the key
           the BENCH_VERIFY baseline reader has always parsed;
           "exec_engine" is the program engine (vm/tree). *)
        json_results :=
          Printf.sprintf
            "{\"name\":%S,\"engine\":%S,\"exec_engine\":%S,\"jobs\":%d,\
             \"executions\":%d,\"complete\":%d,\
             \"truncated\":%d%s,\"steps\":%d,\"wall_clock_seconds\":%.3f,\
             \"exhausted\":%b,\"ok\":%b%s}"
            name engine engine_s jobs (complete + truncated) complete truncated
            pruned_field steps elapsed exhausted ok telemetry_field
          :: !json_results
      in
      let note_por ~name ~ok ?telemetry (s : Por.stats) elapsed =
        note ~name ~engine:"por" ~complete:s.Por.complete ~truncated:s.Por.truncated
          ~pruned:s.Por.pruned ~steps:s.Por.steps ~exhausted:s.Por.exhausted ~ok
          ?telemetry elapsed
      in
      let note_naive ~name ~ok ?telemetry (s : Naive.stats) elapsed =
        note ~name ~engine:"naive" ~complete:s.Naive.complete
          ~truncated:s.Naive.truncated ~steps:s.Naive.steps
          ~exhausted:s.Naive.exhausted ~ok ?telemetry elapsed
      in
      let report_por ~stop name (s : Por.stats) elapsed =
        if not quiet then
          say
            "%-26s explored=%d (complete=%d truncated=%d) pruned=%d%s steps=%d %s (%.1fs)"
            name (Por.explored s) s.complete s.truncated s.pruned
            (if s.dedup_hits > 0 then
               Printf.sprintf " (dedup_hits=%d)" s.dedup_hits
             else "")
            s.steps
            (if s.exhausted then "exhausted"
             else if stop () then "BUDGET EXCEEDED"
             else "run budget exceeded")
            elapsed
      in
      List.iter
        (fun name ->
          let config = Option.get (Checks.find name) in
          let config =
            match fault_override with
            | None -> config
            | Some m -> { config with Checks.faults = m }
          in
          let t1 = Unix.gettimeofday () in
          let elapsed () = Unix.gettimeofday () -. t1 in
          (* One registry per config run: coverage (the per-leaf work)
             only when the block lands in --json; counters alone when a
             progress heartbeat wants the fleet extras.  --cross runs
             two engines over the same config and gets none. *)
          let telem =
            if cross then None
            else if telemetry_json_on then
              Some (Conrat_obs.Telemetry.create ~coverage:true ~domains:jobs ())
            else if progress_on && (jobs > 1 || dedup) then
              Some (Conrat_obs.Telemetry.create ~domains:jobs ())
            else None
          in
          let probe0 =
            Option.map (fun t -> Conrat_obs.Telemetry.probe t ~domain:0) telem
          in
          let telem_json () =
            if not telemetry_json_on then None
            else
              Option.map
                (fun t ->
                  Conrat_obs.Telemetry.finalize t;
                  Conrat_obs.Telemetry.to_json t)
                telem
          in
          (* [--timeout] bounds each config separately, on top of the
             global [--budget]; either way the explorer stops cleanly
             and its partial statistics are still reported/noted. *)
          let stop () =
            stop_global ()
            || (match timeout with
                | None -> false
                | Some s -> Unix.gettimeofday () -. t1 > s)
          in
          if cross then begin
            let naive_rep = reporter ~engine:"naive" name in
            let por_rep = reporter ~engine:"por" name in
            let result =
              Checks.cross_check ~engine:exec_engine ~stop
                ~max_runs:(max_runs_of config) ~jobs
                ?naive_heartbeat:(naive_heartbeat naive_rep)
                ?por_heartbeat:(por_heartbeat por_rep) config
            in
            finish naive_rep;
            finish por_rep;
            match result with
            | Ok x ->
              (* AGREE requires both differentials: naive vs POR outcome
                 sets, and the POR search repeated under the other
                 program engine (vm vs tree). *)
              let ok = x.Checks.outcomes_agree && x.Checks.engines_agree in
              if not quiet then
                say
                  "%-26s naive=%d/%d por=%d/%d pruned=%d outcomes=%d \
                   engines=%s %s (%.1fs)"
                  name x.Checks.naive.Naive.complete x.naive.truncated
                  x.por.Por.complete x.por.truncated x.por.pruned x.outcome_count
                  (if x.engines_agree then "ok" else "MISMATCH")
                  (if ok then "AGREE" else "MISMATCH")
                  (elapsed ());
              note_naive ~name ~ok x.Checks.naive (elapsed ());
              note_por ~name ~ok x.Checks.por (elapsed ());
              if not ok then failed := true
            | Error reason ->
              say "%-26s VIOLATION: %s" name reason;
              failed := true
          end
          else if naive then begin
            let rep = reporter ~engine:"naive" name in
            let result =
              if jobs > 1 then
                Parallel.explore_naive ~jobs ~engine:exec_engine
                  ~max_depth:config.Checks.max_depth
                  ~max_runs:(max_runs_of config)
                  ~cheap_collect:config.Checks.cheap_collect
                  ~faults:config.Checks.faults ~stop
                  ?heartbeat:(naive_heartbeat ?telemetry:telem rep)
                  ?telemetry:telem
                  ~n:config.Checks.n
                  ~setup:(Checks.setup_of config ~n:config.Checks.n)
                  ~check:(Checks.check_of config ~n:config.Checks.n)
                  ()
              else
                Naive.explore ~engine:exec_engine ~max_depth:config.Checks.max_depth
                  ~max_runs:(max_runs_of config)
                  ~cheap_collect:config.Checks.cheap_collect
                  ~faults:config.Checks.faults ~stop
                  ?heartbeat:(naive_heartbeat rep)
                  ?probe:probe0
                  ?resume:resume_counts
                  ?on_checkpoint:(on_checkpoint ~name)
                  ~n:config.Checks.n
                  ~setup:(Checks.setup_of config ~n:config.Checks.n)
                  ~check:(Checks.check_of config ~n:config.Checks.n)
                  ()
            in
            finish rep;
            match result with
            | Ok s ->
              if not quiet then
                say "%-26s explored=%d (complete=%d truncated=%d) steps=%d %s (%.1fs)"
                  name (s.Naive.complete + s.truncated) s.complete s.truncated
                  s.steps
                  (if s.exhausted then "exhausted" else "budget exceeded")
                  (elapsed ());
              note_naive ~name ~ok:true ?telemetry:(telem_json ()) s (elapsed ())
            | Error (reason, s) ->
              (* The naive engine reports but cannot shrink (it does not
                 return the failing path); re-run without --naive for an
                 artifact. *)
              say "%-26s VIOLATION: %s" name reason;
              note_naive ~name ~ok:false ?telemetry:(telem_json ()) s (elapsed ());
              failed := true
          end
          else if dpor then begin
            (* The dynamic-DPOR oracle: sequential, no artifacts — a
               violation here reports and fails; re-run with the default
               engine for a shrunk counterexample. *)
            let rep = reporter ~engine:"dpor" name in
            let result =
              Por.explore_source ~engine:exec_engine
                ~max_depth:config.Checks.max_depth
                ~max_runs:(max_runs_of config)
                ~cheap_collect:config.Checks.cheap_collect
                ~faults:config.Checks.faults ~stop
                ?heartbeat:(por_heartbeat rep)
                ?probe:probe0
                ~n:config.Checks.n
                ~setup:(Checks.setup_of config ~n:config.Checks.n)
                ~check:(Checks.check_of config ~n:config.Checks.n)
                ()
            in
            finish rep;
            match result with
            | Ok s ->
              report_por ~stop name s (elapsed ());
              note ~name ~engine:"dpor" ~complete:s.Por.complete
                ~truncated:s.Por.truncated ~pruned:s.Por.pruned
                ~steps:s.Por.steps ~exhausted:s.Por.exhausted ~ok:true
                ?telemetry:(telem_json ()) (elapsed ())
            | Error (reason, _path, s) ->
              say "%-26s VIOLATION: %s" name reason;
              note ~name ~engine:"dpor" ~complete:s.Por.complete
                ~truncated:s.Por.truncated ~pruned:s.Por.pruned
                ~steps:s.Por.steps ~exhausted:s.Por.exhausted ~ok:false
                ?telemetry:(telem_json ()) (elapsed ());
              failed := true
          end
          else begin
            let rep = reporter ~engine:"por" name in
            let result =
              Checks.run ~engine:exec_engine ~stop ~max_runs:(max_runs_of config)
                ?heartbeat:(por_heartbeat ?telemetry:telem rep)
                ?resume:resume_counts
                ?on_checkpoint:(on_checkpoint ~name) ~jobs ~dedup
                ?telemetry:telem config
            in
            finish rep;
            match result with
            | Ok s ->
              report_por ~stop name s (elapsed ());
              note_por ~name ~ok:true ?telemetry:(telem_json ()) s (elapsed ())
            | Error f ->
              let file =
                Filename.concat artifact_dir (name ^ ".counterexample.sexp")
              in
              Artifact.save file f.Checks.artifact;
              say "%-26s VIOLATION: %s" name f.Checks.reason;
              say
                "  after %d executions; shrunk to n=%d, %d choices \
                 (%d shrink replays)"
                (Por.explored f.Checks.stats) f.Checks.artifact.Artifact.n
                (List.length f.Checks.artifact.Artifact.path)
                f.Checks.shrink_replays;
              say "  counterexample written to %s" file;
              note_por ~name ~ok:false ?telemetry:(telem_json ())
                f.Checks.stats (elapsed ());
              failed := true
          end)
        names;
      (match json with
       | None -> ()
       | Some file ->
         (* Rows without telemetry are the historical schema v1; the
            nested per-row telemetry/coverage block is schema v3 (v2 was
            the fault-plane artifact schema). *)
         let doc =
           Printf.sprintf
             "{\n  \"schema_version\": %d,\n  \"kind\": \"verify-bench\",\n  \
              \"results\": [\n    %s\n  ]\n}\n"
             (if !any_telemetry then 3 else 1)
             (String.concat ",\n    " (List.rev !json_results))
         in
         if json_stdout then (print_string doc; flush stdout)
         else begin
           let oc = open_out file in
           output_string oc doc;
           close_out oc;
           Report.info "[check] wrote %s" file
         end);
      if Atomic.get interrupted then begin
        Report.info "[check] interrupted (SIGINT); partial results flushed";
        exit 130
      end;
      if !failed then exit 1
  in
  let naive_arg =
    Arg.(value & flag
         & info [ "naive" ]
             ~doc:"Use the unreduced enumerator instead of the POR engine.")
  in
  let cross_arg =
    Arg.(value & flag
         & info [ "cross" ]
             ~doc:"Run both exploration algorithms (naive and POR) and compare \
                   complete-execution outcome sets; also repeats the POR search \
                   under the other program engine (vm vs tree) and compares.")
  in
  let dpor_arg =
    Arg.(value & flag
         & info [ "dpor" ]
             ~doc:"Use the dynamic (source-set-style) partial-order-reduction \
                   engine: backtracking points are added only where executed \
                   transitions race, so it explores fewer executions than the \
                   sleep-set engine while preserving the complete-execution \
                   outcome set.  Sequential oracle only — excludes --jobs, \
                   --dedup, --naive, --cross and checkpointing.")
  in
  let check_dedup_arg =
    Arg.(value & flag
         & info [ "dedup" ]
             ~doc:"Prune scheduling states already visited at the same depth \
                   and crash budget (hashed VM snapshots: program counters, \
                   memory, fault bits).  Preserves the complete-execution \
                   outcome set; execution counts shrink.  VM engine only; \
                   excludes --naive/--cross/--dpor and checkpointing.")
  in
  let engine_arg =
    Arg.(value & opt string "vm"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Program engine: 'vm' (compiled flat-instruction VM, the \
                   default) or 'tree' (the direct Program.t interpreter, kept \
                   as the differential oracle).  Results are bit-identical \
                   under either.")
  in
  let budget_arg =
    Arg.(value & opt (some float) None
         & info [ "budget" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget across all requested checkers; exploration \
                   stops cleanly (reported as not exhausted) when exceeded.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-config wall-clock budget (on top of the global \
                   $(b,--budget)); a config that exceeds it stops cleanly and \
                   its partial statistics still land in the report and the \
                   $(b,--json) document.")
  in
  let faults_arg =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Override every requested config's fault model: 'none', \
                   'crash:f=K' (crash-closed exploration of up to K \
                   crash-stops), 'weak' (regular-register read forks), \
                   'recover[:r=R]' (crash-recovery closure: restart up to R \
                   crashed processes, volatile registers wiped; needs a crash \
                   budget), or combinations like 'crash:f=1,recover'.")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Periodically save the explorer's DFS frontier to FILE \
                   (atomically), and once more on SIGINT or budget exhaustion; \
                   requires exactly one checker name.  Resume with \
                   $(b,--resume) for bit-identical totals.")
  in
  let resume_arg =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Resume exploration from a checkpoint written by \
                   $(b,--checkpoint) (the engine and checker name must match); \
                   the completed run's statistics are bit-identical to an \
                   uninterrupted one.")
  in
  let max_runs_arg =
    Arg.(value & opt (some int) None
         & info [ "max-runs" ] ~docv:"RUNS"
             ~doc:"Override each config's execution budget.")
  in
  let artifact_dir_arg =
    Arg.(value & opt string "."
         & info [ "artifact-dir" ] ~docv:"DIR"
             ~doc:"Where to write <name>.counterexample.sexp on failure.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a counterexample artifact instead of exploring; exits 0 \
                   iff the violation reproduces.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write per-config exploration statistics (executions, machine \
                   steps, wall clock) as JSON, schema v1; see `make perf-verify` \
                   and BENCH_VERIFY.json.  FILE '-' writes the document to \
                   stdout and moves all human-facing lines to stderr.")
  in
  let no_telemetry_arg =
    Arg.(value & flag
         & info [ "no-telemetry" ]
             ~doc:"Skip the per-run telemetry/coverage block that $(b,--json) \
                   includes by default (schema v3); rows revert to the plain \
                   schema-v1 shape and the run pays no per-leaf coverage \
                   cost — used by `make perf-verify` to keep \
                   BENCH_VERIFY.json timings comparable across releases.")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Force progress heartbeats on stderr (executions/sec, ETA \
                   against the committed BENCH_VERIFY baseline).  Default: on \
                   only when stderr is a TTY and \\$(b,CI) is unset.")
  in
  let progress_interval_arg =
    Arg.(value & opt (some float) None
         & info [ "progress-interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between progress lines (default 1.0).")
  in
  let quiet_arg =
    Arg.(value & flag
         & info [ "q"; "quiet" ]
             ~doc:"Suppress per-config success lines and progress; violations \
                   and the exit status still report failures.")
  in
  let names_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"CHECKER" ~doc:"Checker config names, or 'all'.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaustively verify named checker configs (POR engine by default)")
    Term.(const action $ naive_arg $ cross_arg $ dpor_arg $ engine_arg
          $ budget_arg $ timeout_arg
          $ max_runs_arg $ artifact_dir_arg $ replay_arg $ json_arg
          $ faults_arg $ checkpoint_arg $ resume_arg $ jobs_arg
          $ check_dedup_arg $ no_telemetry_arg $ progress_arg
          $ progress_interval_arg $ quiet_arg $ names_arg)

(* telemetry *)

let telemetry_cmd =
  let open Conrat_verify in
  let action name jobs dedup engine_s max_runs out trace =
    let jobs = if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs in
    match Checks.find name with
    | None ->
      Printf.eprintf "conrat: unknown checker %s (expected %s)\n" name
        (String.concat ", "
           (Checks.names @ Checks.demo_names @ Checks.extended_names));
      exit 2
    | Some config ->
      let exec_engine : Conrat_sim.Machine.engine =
        match engine_s with
        | "vm" -> `Vm
        | "tree" -> `Tree
        | other ->
          Printf.eprintf "conrat: bad --engine %S (expected 'vm' or 'tree')\n"
            other;
          exit 2
      in
      if dedup && engine_s = "tree" then begin
        Printf.eprintf
          "conrat: --dedup needs the VM engine's state hash (drop \
           --engine tree)\n";
        exit 2
      end;
      let telem = Conrat_obs.Telemetry.create ~coverage:true ~domains:jobs () in
      let chrome =
        Option.map
          (fun _ -> Conrat_obs.Chrome_trace.create_fleet ~workers:jobs)
          trace
      in
      let sink = Option.map Conrat_obs.Chrome_trace.fleet_sink chrome in
      let t0 = Unix.gettimeofday () in
      let result =
        Checks.run ~engine:exec_engine ?max_runs ~jobs ~dedup ~telemetry:telem
          ?sink config
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Conrat_obs.Telemetry.finalize telem;
      let doc = Conrat_obs.Telemetry.to_json telem ^ "\n" in
      if out = "-" then (print_string doc; flush stdout)
      else begin
        let oc = open_out out in
        output_string oc doc;
        close_out oc;
        Report.info "[telemetry] wrote %s" out
      end;
      (match (trace, chrome) with
       | Some file, Some ct ->
         write_chrome_trace ct file;
         if file <> "-" then
           Report.info
             "[telemetry] wrote fleet trace to %s (one track per worker \
              domain; open in ui.perfetto.dev)"
             file
       | _ -> ());
      (match result with
       | Ok s ->
         Report.info
           "[telemetry] %s: explored=%d pruned=%d steps=%d %s (%.1fs, jobs=%d%s)"
           name (Por.explored s) s.Por.pruned s.Por.steps
           (if s.Por.exhausted then "exhausted" else "budget exceeded")
           elapsed jobs
           (if dedup then ", dedup" else "")
       | Error f ->
         Report.info "[telemetry] %s: VIOLATION: %s" name f.Checks.reason;
         exit 1)
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"CHECKER"
             ~doc:"Checker config name to profile (see `conrat list`).")
  in
  let telemetry_dedup_arg =
    Arg.(value & flag
         & info [ "dedup" ]
             ~doc:"Enable duplicate-state suppression (VM engine only), so the \
                   dedup hit/miss/saturation telemetry is populated.")
  in
  let engine_arg =
    Arg.(value & opt string "vm"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Program engine: 'vm' (default) or 'tree'.")
  in
  let max_runs_arg =
    Arg.(value & opt (some int) None
         & info [ "max-runs" ] ~docv:"RUNS"
             ~doc:"Override the config's execution budget.")
  in
  let out_arg =
    Arg.(value & opt string "-"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the schema-v3 telemetry document (fleet-total \
                   counters, per-domain rows, per-shard records, coverage \
                   signatures); '-' = stdout (the default).")
  in
  let fleet_trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Also record the fleet as a Chrome trace-event JSON file with \
                   one track per worker domain: a span per explored shard \
                   (shard id, prefix depth) and instant markers at steals and \
                   checkpoint saves.  Meaningful with --jobs > 1; loadable in \
                   ui.perfetto.dev.")
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:"Exhaustively verify one checker config with the full telemetry \
             plane on, and dump the counters/coverage document")
    Term.(const action $ name_arg $ jobs_arg $ telemetry_dedup_arg $ engine_arg
          $ max_runs_arg $ out_arg $ fleet_trace_arg)

(* trace *)

let trace_cmd =
  let open Conrat_verify in
  let action name out seed adversary =
    match Checks.find name with
    | None ->
      Printf.eprintf "conrat: unknown checker %s (expected %s)\n" name
        (String.concat ", " (Checks.names @ Checks.demo_names));
      exit 2
    | Some config ->
      let n = config.Checks.n in
      let adversary = Adversary.by_name adversary in
      let memory, body = Checks.setup_of config ~n () in
      let ct = Conrat_obs.Chrome_trace.create ~n in
      let result =
        Scheduler.run ~cheap_collect:config.Checks.cheap_collect
          ~sink:(Conrat_obs.Chrome_trace.sink ct) ~n ~adversary
          ~rng:(Rng.create seed) ~memory
          (fun ~pid ~rng:_ -> body ~pid)
      in
      write_chrome_trace ct out;
      Report.info "[trace] %s under %s: %d steps, %d trace events%s" name
        adversary.Adversary.name result.Scheduler.steps
        (Conrat_obs.Chrome_trace.events ct)
        (if out = "-" then "" else Printf.sprintf ", wrote %s" out);
      Report.info "[trace] load the file at https://ui.perfetto.dev"
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"CHECKER"
             ~doc:"Checker config name to trace one execution of (see `conrat list`).")
  in
  let out_arg =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output file for the Chrome trace-event JSON ('-' = stdout).")
  in
  let trace_adversary_arg =
    Arg.(value & opt string "round_robin"
         & info [ "a"; "adversary" ] ~docv:"ADV"
             ~doc:(Printf.sprintf "Adversary: %s." (String.concat ", " adversary_names)))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record one execution of a checker config as a Chrome/Perfetto trace")
    Term.(const action $ name_arg $ out_arg $ seed_arg $ trace_adversary_arg)

(* list *)

let list_cmd =
  let action () =
    Printf.printf "protocols:   %s\n" (String.concat ", " protocol_names);
    Printf.printf "adversaries: %s\n" (String.concat ", " adversary_names);
    Printf.printf "workloads:   %s\n" (String.concat ", " workload_names);
    Printf.printf "experiments: %s\n" (String.concat ", " Experiments.all_names);
    Printf.printf "checkers:    %s\n" (String.concat ", " Conrat_verify.Checks.names);
    Printf.printf "checker demos (expected-fail): %s\n"
      (String.concat ", " Conrat_verify.Checks.demo_names)
  in
  Cmd.v (Cmd.info "list" ~doc:"List available components") Term.(const action $ const ())

let () =
  let doc = "modular shared-memory consensus (conciliators + ratifiers), Aspnes PODC 2010" in
  let info = Cmd.info "conrat" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; sweep_cmd; experiment_cmd; check_cmd; telemetry_cmd;
            trace_cmd; list_cmd ]))
